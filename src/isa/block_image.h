// Superblock view of a predecoded image: for every PC the predecoded
// ranges cover, the straight-line run (basic block) that starts there
// -- instruction span, total cycles, and how the run terminates. Built
// once per build from the shared isa::DecodedImage and shared read-only
// by every simulated device flashed with that image, exactly like the
// decoded table itself.
//
// Representation: a per-PC *suffix table* rather than a leader-keyed
// block list. Every even address is a valid block entry whose run
// extends to the first hazard at or after it (control transfer, SR
// write, range end, undecodable slot). This subsumes the CFG's block
// leaders -- a jump or indirect branch into the *middle* of some other
// entry's run simply dispatches the suffix starting at the landing PC,
// so block splitting needs no runtime bookkeeping and no CFG lookup
// (the CFG, extracted per build for the verifier, identifies a subset
// of these entries; the suffix form is closed over every PC the
// hardware could ever reach, including ones static analysis never
// names).
//
// Hazards that end a block (BlockEnd):
//   - kTransfer: the terminator may set PC non-sequentially (jumps,
//     call/reti, PC-destination ALU ops). Executed as part of the
//     block; the machine re-dispatches from wherever PC landed.
//   - kSrWrite: the terminator writes the status register, so GIE or
//     CPUOFF may flip mid-run; the machine must re-check interrupt
//     deliverability before the next instruction.
//   - kRangeEnd: the run hit the end of a predecoded range (top of the
//     secure ROM, top of memory). Execution falls through into
//     territory the table does not cover; the per-instruction core
//     takes over there.
//   - kLeadsIllegal: the next slot does not decode. The block stops
//     *before* it so the illegal-instruction trap is raised by the
//     per-instruction path with exactly the interpretive semantics.
//   - kNone (span == 0): this PC itself does not decode.
#ifndef EILID_ISA_BLOCK_IMAGE_H
#define EILID_ISA_BLOCK_IMAGE_H

#include <cstdint>
#include <span>
#include <vector>

#include "isa/decoded_image.h"

namespace eilid::isa {

// True when executing `insn` can change the status register as a side
// effect visible to the interrupt logic: any register-mode write whose
// destination is SR (mov/bis/bic/... to r2, single-op RMW on r2).
// Flag updates from ALU ops do not count -- C/Z/N/V cannot mask an
// interrupt; GIE and CPUOFF can only be set through an SR-destination
// write (or reti, which is a control transfer already).
bool writes_status_register(const Instruction& insn);

enum class BlockEnd : uint8_t {
  kNone,          // entry PC does not decode (span == 0)
  kTransfer,      // control-transfer terminator
  kSrWrite,       // status-register-writing terminator
  kRangeEnd,      // predecoded range ends after the terminator
  kLeadsIllegal,  // the slot after the terminator does not decode
};

class BlockImage {
 public:
  struct Entry {
    uint16_t span = 0;    // instructions from this PC through the terminator
    uint16_t cycles = 0;  // summed isa::instruction_cycles over the span
    // Static branch target of a kTransfer terminator: the jump target
    // for jump-format instructions, the immediate callee for
    // `call #addr`; 0 for indirect transfers (and for every other
    // terminator kind, whose successor is the fall-through).
    uint16_t target = 0;
    BlockEnd end = BlockEnd::kNone;
  };

  // Built from the decoded table in one backward pass per range; the
  // ranges mirror the decoded image's exactly.
  explicit BlockImage(const DecodedImage& decoded);

  // Entry for the block starting at `pc`, or nullptr outside every
  // predecoded range. A non-null entry with span == 0 means the bytes
  // at pc do not decode.
  const Entry* lookup(uint16_t pc) const {
    for (const RangeTable& t : tables_) {
      if (pc >= t.first && pc <= t.last) {
        return &t.entries[static_cast<size_t>(pc - t.first) >> 1];
      }
    }
    return nullptr;
  }

  // Total predecoded slots across all ranges.
  size_t slot_count() const;
  // Longest run in the table (stats / sizing the IRQ cycle budget).
  size_t max_span() const { return max_span_; }

  // Contiguous per-range views, index-aligned with the decoded image's
  // range_views() (both tables have one slot per even address over
  // identical ranges). The CPU zips the two at attach time so block
  // dispatch pays a single range scan per block.
  struct RangeView {
    uint16_t first;
    uint16_t last;
    std::span<const Entry> entries;
  };
  std::vector<RangeView> range_views() const;

 private:
  struct RangeTable {
    uint16_t first;
    uint16_t last;
    std::vector<Entry> entries;  // one per even address in [first, last]
  };

  std::vector<RangeTable> tables_;
  size_t max_span_ = 0;
};

}  // namespace eilid::isa

#endif  // EILID_ISA_BLOCK_IMAGE_H
