// Scenario-fuzzer suites: generator determinism and soundness, the
// spec-level shrinker, and the bounded differential corpus that CI
// runs on every push (the full soak lives in bench/bench_fuzz_soak).
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "fuzz/attack_mutator.h"
#include "fuzz/harness.h"
#include "fuzz/program_generator.h"

namespace eilid::fuzz {
namespace {

// ------------------------------------------------------------ generator

TEST(ProgramGenerator, SameSeedSameSpecSameSource) {
  ProgramGenerator gen;
  for (uint64_t seed : {1ull, 42ull, 0xdeadbeefull}) {
    const ProgramSpec a = gen.generate(seed);
    const ProgramSpec b = gen.generate(seed);
    EXPECT_EQ(a, b) << "seed " << seed;
    EXPECT_EQ(a.render(), b.render()) << "seed " << seed;
  }
}

TEST(ProgramGenerator, DistinctSeedsExploreDistinctPrograms) {
  ProgramGenerator gen;
  std::set<std::string> sources;
  for (uint64_t seed = 1; seed <= 32; ++seed) {
    sources.insert(gen.generate(seed).render());
  }
  // Not all 32 need be unique, but a generator that collapses to a
  // handful of shapes is not exploring the space.
  EXPECT_GE(sources.size(), 24u);
}

TEST(ProgramGenerator, SpecsRespectConstructionRules) {
  ProgramGenerator gen;
  for (uint64_t seed = 1; seed <= 64; ++seed) {
    const ProgramSpec spec = gen.generate(seed);
    ASSERT_FALSE(spec.functions.empty());
    const int n = static_cast<int>(spec.functions.size());
    for (int i = 0; i < n; ++i) {
      for (const Op& op : spec.functions[i].ops) {
        if (op.kind == Op::Kind::kCallDirect) {
          // Call DAG: only higher indices, so recursion is impossible.
          EXPECT_GT(op.a, i) << "seed " << seed;
          EXPECT_LT(op.a, n) << "seed " << seed;
        }
        if (op.kind == Op::Kind::kCallIndirect) {
          // Indirect dispatch exists only in main and through a real
          // table slot.
          EXPECT_EQ(i, 0) << "seed " << seed;
          ASSERT_LT(static_cast<size_t>(op.a), spec.table.size())
              << "seed " << seed;
        }
      }
    }
    for (int target : spec.table) {
      EXPECT_GT(target, 0) << "seed " << seed;  // never main
      EXPECT_LT(target, n) << "seed " << seed;
    }
  }
}

// ------------------------------------------------------------- shrinker

TEST(Shrinker, CandidatesAreStrictlySmaller) {
  ProgramGenerator gen;
  const ProgramSpec spec = gen.generate(7);
  for (const ProgramSpec& cand : shrink_candidates(spec)) {
    const bool fewer_ops = cand.op_count() < spec.op_count();
    const bool fewer_fns = cand.functions.size() < spec.functions.size();
    const bool smaller_table = cand.table.size() < spec.table.size();
    const bool irq_disarmed = spec.timer_irq && !cand.timer_irq;
    bool smaller_loop = false;
    for (size_t f = 0; f < cand.functions.size(); ++f) {
      for (size_t o = 0; o < cand.functions[f].ops.size(); ++o) {
        const Op& before = spec.functions[f].ops[o];
        const Op& after = cand.functions[f].ops[o];
        if (before.kind == Op::Kind::kLoop && after.kind == Op::Kind::kLoop &&
            after.a < before.a) {
          smaller_loop = true;
        }
      }
    }
    EXPECT_TRUE(fewer_ops || fewer_fns || smaller_table || irq_disarmed ||
                smaller_loop);
  }
}

TEST(Shrinker, GreedyShrinkConvergesToMinimalReproducer) {
  ProgramGenerator gen;
  DifferentialHarness harness;
  const ProgramSpec spec = gen.generate(11);
  ASSERT_GE(spec.op_count(), 2u);
  // Failure predicate: "the program still contains a loop". The
  // minimized spec must keep exactly what the predicate needs and
  // nothing else shrinkable around it.
  const auto has_loop = [](const ProgramSpec& s) {
    for (const auto& fn : s.functions) {
      for (const Op& op : fn.ops) {
        if (op.kind == Op::Kind::kLoop) return true;
      }
    }
    return false;
  };
  if (!has_loop(spec)) GTEST_SKIP() << "seed 11 rolled no loop";
  const ProgramSpec minimal = harness.shrink(spec, has_loop);
  EXPECT_TRUE(has_loop(minimal));
  // Nothing one step smaller still reproduces: that is what "minimal"
  // means for the greedy walk.
  for (const ProgramSpec& cand : shrink_candidates(minimal)) {
    EXPECT_FALSE(has_loop(cand));
  }
}

// ------------------------------------------------- differential corpus

TEST(DifferentialCorpus, BoundedCorpusRunsCleanAcrossEnginesAndPolicies) {
  // The CI-bounded corpus: every generated program across 3 engines x
  // 4 policies with bit-identical state + evidence, pooled == serial
  // sweeps, every mutated case convicted or refused. The full-size
  // sweep (500 programs / 24 mutation seeds) runs as
  // `bench_fuzz_soak --smoke` in the release-bench CI job.
  DifferentialHarness harness;  // defaults: 24 programs, 16 mutation seeds
  const HarnessReport report = harness.run();
  for (const std::string& failure : report.failures) {
    ADD_FAILURE() << failure;
  }
  EXPECT_EQ(report.programs, 24);
  EXPECT_EQ(report.engine_runs, 24 * 12);
  EXPECT_GT(report.mutation_cases, 0);
  // Both conviction paths must actually fire across the corpus:
  // convictions prove CFA replay catches diverted control flow,
  // refusals prove MAC/EILID/transport checks reject the rest.
  EXPECT_GT(report.convicted, 0);
  EXPECT_GT(report.refused, 0);
  EXPECT_EQ(report.convicted + report.refused, report.mutation_cases);
}

TEST(DifferentialCorpus, SingleSeedReproducesDeterministically) {
  // The reproduce handle printed on failure -- `--seed N --programs 1
  // --mutations 1` -- must rerun the exact case: two harnesses over
  // the same seed agree in every counter.
  HarnessOptions options;
  options.seed = 1234;
  HarnessReport a, b;
  DifferentialHarness(options).check_program(options.seed, a);
  DifferentialHarness(options).check_program(options.seed, b);
  EXPECT_EQ(a.engine_runs, b.engine_runs);
  EXPECT_EQ(a.failures, b.failures);
  DifferentialHarness(options).check_mutation(options.seed, a);
  DifferentialHarness(options).check_mutation(options.seed, b);
  EXPECT_EQ(a.mutation_cases, b.mutation_cases);
  EXPECT_EQ(a.convicted, b.convicted);
  EXPECT_EQ(a.refused, b.refused);
  EXPECT_EQ(a.failures, b.failures);
}

}  // namespace
}  // namespace eilid::fuzz
