#include "casu/update.h"

namespace eilid::casu {

UpdateEngine::UpdateEngine(std::span<const uint8_t> device_key,
                           CasuMonitor& monitor)
    : update_key_(crypto::derive_key(device_key, "casu-update")),
      monitor_(monitor) {}

crypto::Digest UpdateEngine::mac_for(const UpdatePackage& package) const {
  // MAC over addr || version || payload (all fields fixed-width LE).
  std::vector<uint8_t> msg;
  msg.reserve(6 + package.payload.size());
  msg.push_back(static_cast<uint8_t>(package.target_addr));
  msg.push_back(static_cast<uint8_t>(package.target_addr >> 8));
  for (int i = 0; i < 4; ++i) {
    msg.push_back(static_cast<uint8_t>(package.version >> (8 * i)));
  }
  msg.insert(msg.end(), package.payload.begin(), package.payload.end());
  return crypto::hmac_sha256(
      std::span<const uint8_t>(update_key_.data(), update_key_.size()),
      std::span<const uint8_t>(msg.data(), msg.size()));
}

UpdatePackage UpdateEngine::make_package(uint16_t target_addr, uint32_t version,
                                         std::vector<uint8_t> payload) const {
  UpdatePackage pkg;
  pkg.target_addr = target_addr;
  pkg.version = version;
  pkg.payload = std::move(payload);
  pkg.mac = mac_for(pkg);
  return pkg;
}

UpdateStatus UpdateEngine::apply(sim::Machine& machine,
                                 const UpdatePackage& package) {
  if (!sim::is_pmem(package.target_addr) ||
      package.target_addr + package.payload.size() > 0x10000) {
    return UpdateStatus::kBadRegion;
  }
  crypto::Digest expected = mac_for(package);
  if (!crypto::digest_equal(expected, package.mac)) {
    // Authentication failure is a monitored event: the ROM update
    // routine reports it and the device resets at the next step.
    monitor_.report_update_auth_failure();
    return UpdateStatus::kBadMac;
  }
  if (package.version <= version_) {
    return UpdateStatus::kRollback;
  }
  monitor_.begin_update_session();
  for (size_t i = 0; i < package.payload.size(); ++i) {
    machine.bus().raw_store_byte(
        static_cast<uint16_t>(package.target_addr + i), package.payload[i]);
  }
  monitor_.end_update_session();
  version_ = package.version;
  return UpdateStatus::kApplied;
}

}  // namespace eilid::casu
