// Self-checking differential harness: ties the program generator and
// the attack mutators to the three oracles the stack gives away for
// free --
//
//   1. engine identity: every generated program, run under every
//      enforcement policy, must produce bit-identical final state
//      (registers, cycles, retired count, resets, RAM) and, where a
//      CFA monitor is present, bit-identical attestation evidence
//      (edges, drop count, cycle, MAC) across kInterpretive,
//      kPredecoded and kSuperblock;
//   2. sweep identity: a pooled VerifierService sweep over a cohort
//      must return verdict-for-verdict the same results as a serial
//      sweep over an identical cohort;
//   3. convict-or-refuse: every mutated case -- a diverted jump, a
//      gadget-repointed dispatch table, a tampered report, a
//      bit-flipped package, a corrupted chunk stream -- must be
//      convicted by CFA replay, refused by EILID's run-time checks, or
//      refused by MAC/structure validation. An attack that sails
//      through is a fuzzer failure.
//
// Reproduce-and-minimize workflow: run() prints each failing seed to
// stderr as it happens; check_program(seed)/check_mutation(seed)
// replay exactly one case; shrink() greedily walks shrink_candidates()
// while the failure predicate keeps reproducing, yielding the minimal
// spec a regression test commits (tests/test_fuzz_regressions.cpp).
#ifndef EILID_FUZZ_HARNESS_H
#define EILID_FUZZ_HARNESS_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fuzz/attack_mutator.h"
#include "fuzz/program_generator.h"

namespace eilid::fuzz {

struct HarnessOptions {
  uint64_t seed = 1;
  int programs = 24;   // seeds fed to check_program
  int mutations = 16;  // seeds fed to check_mutation (each seed runs
                       // every applicable mutation family)
  // Cycle budget for a benign run (scaled 4x for instrumented builds).
  // Generated programs terminate well under this; exhausting it is
  // itself a failure (a program that escaped the termination rules).
  uint64_t benign_budget = 2'000'000;
  // Cycle budget for a mutated run, which may legitimately never halt
  // (diverted control flow can spin); the evidence gathered up to the
  // budget must convict regardless.
  uint64_t mutated_budget = 400'000;
  GeneratorOptions generator;
};

struct HarnessReport {
  int programs = 0;        // generated programs checked
  int engine_runs = 0;     // engine x policy benign runs executed
  int mutation_cases = 0;  // mutated cases checked
  int convicted = 0;       // mutated cases convicted by CFA replay
  int refused = 0;         // mutated cases refused up front (EILID
                           // check, MAC, parse, transport)
  std::vector<std::string> failures;  // "seed 0x...: what diverged"

  bool ok() const { return failures.empty(); }
};

class DifferentialHarness {
 public:
  explicit DifferentialHarness(HarnessOptions options = {})
      : options_(options) {}

  // One generated program through oracles 1 and 2. Failures append to
  // report.failures; exceptions are caught and recorded as failures.
  void check_program(uint64_t seed, HarnessReport& report);

  // One generated program through every applicable mutation family
  // (oracle 3).
  void check_mutation(uint64_t seed, HarnessReport& report);

  // The full sweep per options, printing each failing seed to stderr
  // the moment it fails (the reproduce handle survives a crash later
  // in the run).
  HarnessReport run();

  // Greedy spec minimization: repeatedly adopt the first one-step
  // shrink for which `reproduces` still holds, until none does.
  ProgramSpec shrink(
      ProgramSpec spec,
      const std::function<bool(const ProgramSpec&)>& reproduces) const;

 private:
  HarnessOptions options_;
};

}  // namespace eilid::fuzz

#endif  // EILID_FUZZ_HARNESS_H
