#!/usr/bin/env python3
"""Bench perf-regression gate.

Compares a freshly emitted bench JSON (BENCH_sim_throughput.json /
BENCH_fleet_health.json) against the committed baseline and fails when
any speedup column regressed by more than the tolerance (default 20%).

Two column families are gated, in opposite directions:

- ``speedup*`` ratios must not *drop* by more than the tolerance.
  Only ratios, never absolute MIPS or verdict rates: a ratio
  (predecoded-vs-interpretive, superblock-vs-interpretive,
  pooled-vs-serial) divides out the host's raw speed, so the gate is
  meaningful on CI hardware that is faster or slower than the machine
  that produced the committed baseline. Other absolute perf numbers
  stay visible in the uploaded artifacts for human eyes.
- ``resident_*`` byte counts must not *grow* by more than the
  tolerance. Unlike wall-clock numbers these ARE host-independent --
  they count deterministic data-structure bytes (copy-on-write pages,
  page tables, log arenas), so an absolute comparison is exact and a
  growth regression is a real memory-diet regression
  (bench_fleet_10k's resident_bytes_per_device).

Rows are matched by identity key (``policy`` for the sim bench,
``threads`` for the fleet bench). A row or speedup column present in
the baseline but missing from the fresh run fails the gate (a silently
dropped measurement is how regressions hide); a *new* column with no
baseline is noted and passes. The fresh run's own ``ok`` differential
gate must also be true.

Usage:
    check_bench_regression.py FRESH BASELINE [--tolerance 0.20]

Exit status: 0 pass, 1 regression (or malformed input), 2 missing
baseline file (pass-with-warning: first run after adding a bench).

Stdlib only -- no third-party imports; CI runs it with the system
python3.
"""

import argparse
import json
import sys


def row_key(row):
    """Identity of a result row: whichever of the known keys it carries."""
    for key in ("policy", "threads"):
        if key in row:
            return f"{key}={row[key]}"
    return None


def speedup_columns(row):
    return {
        k: v
        for k, v in row.items()
        if k.startswith("speedup") and isinstance(v, (int, float))
    }


def resident_columns(row):
    """Absolute memory metrics: gated against *growth*, not loss."""
    return {
        k: v
        for k, v in row.items()
        if k.startswith("resident_") and isinstance(v, (int, float))
    }


def rows_of(doc):
    """The result-row list of a bench document, keyed by row identity."""
    for key in ("policies", "rows"):
        rows = doc.get(key)
        if isinstance(rows, list):
            indexed = {}
            for row in rows:
                rk = row_key(row)
                if rk is not None:
                    indexed[rk] = row
            return indexed
    return {}


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", help="bench JSON emitted by this run")
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="max fractional speedup loss before failing (default 0.20)",
    )
    args = parser.parse_args()

    try:
        with open(args.fresh) as f:
            fresh = json.load(f)
    except (OSError, ValueError) as err:
        print(f"FAIL: cannot read fresh result {args.fresh}: {err}")
        return 1
    try:
        with open(args.baseline) as f:
            baseline = json.load(f)
    except OSError as err:
        # First run after a bench was added: nothing to compare against.
        print(f"WARN: no baseline ({err}); commit the fresh JSON to arm the gate")
        return 2
    except ValueError as err:
        print(f"FAIL: baseline {args.baseline} is not JSON: {err}")
        return 1

    failures = []
    if fresh.get("ok") is not True:
        failures.append("fresh run's own differential gate reported ok=false")

    fresh_rows = rows_of(fresh)
    for rk, base_row in rows_of(baseline).items():
        fresh_row = fresh_rows.get(rk)
        if fresh_row is None:
            failures.append(f"{rk}: row present in baseline, missing from fresh run")
            continue
        fresh_cols = speedup_columns(fresh_row)
        for col, base_val in speedup_columns(base_row).items():
            if base_val <= 0:
                continue
            fresh_val = fresh_cols.get(col)
            if fresh_val is None:
                failures.append(f"{rk}: column {col} dropped from fresh run")
                continue
            loss = (base_val - fresh_val) / base_val
            verdict = "FAIL" if loss > args.tolerance else "ok"
            print(
                f"{verdict:>4}  {rk:<24} {col:<20} "
                f"baseline {base_val:6.2f}x  fresh {fresh_val:6.2f}x  "
                f"({-loss:+6.1%})"
            )
            if loss > args.tolerance:
                failures.append(
                    f"{rk}: {col} regressed {loss:.1%} "
                    f"({base_val:.2f}x -> {fresh_val:.2f}x)"
                )
        for col in fresh_cols.keys() - speedup_columns(base_row).keys():
            print(f"note  {rk:<24} {col:<20} new column, no baseline")

        fresh_mem = resident_columns(fresh_row)
        for col, base_val in resident_columns(base_row).items():
            if base_val <= 0:
                continue
            fresh_val = fresh_mem.get(col)
            if fresh_val is None:
                failures.append(f"{rk}: column {col} dropped from fresh run")
                continue
            growth = (fresh_val - base_val) / base_val
            verdict = "FAIL" if growth > args.tolerance else "ok"
            print(
                f"{verdict:>4}  {rk:<24} {col:<20} "
                f"baseline {base_val:10.0f}B  fresh {fresh_val:10.0f}B  "
                f"({growth:+6.1%})"
            )
            if growth > args.tolerance:
                failures.append(
                    f"{rk}: {col} grew {growth:.1%} "
                    f"({base_val:.0f}B -> {fresh_val:.0f}B)"
                )
        for col in fresh_mem.keys() - resident_columns(base_row).keys():
            print(f"note  {rk:<24} {col:<20} new column, no baseline")

    # Rows the fresh run has but the baseline lacks are not a failure
    # (a new measurement is arriving, the mirror of the new-column
    # case) -- but they must not pass *silently*, or the new rows never
    # get committed as baselines and stay ungated forever.
    baseline_rows = rows_of(baseline)
    for rk in sorted(fresh_rows.keys() - baseline_rows.keys()):
        print(
            f"note  {rk:<24} new row, no baseline -- "
            "commit the fresh JSON to gate it"
        )

    if failures:
        print(f"\nFAIL: {len(failures)} regression(s) beyond "
              f"{args.tolerance:.0%} tolerance:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nPASS: no speedup or resident-memory regression beyond "
          f"{args.tolerance:.0%} tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
