// Two-pass MSP430 assembler.
//
// Pass 1 sizes every statement and assigns addresses (symbolic
// immediates never constant-generator-compress, so sizing is
// deterministic); pass 2 resolves symbols and encodes. Output is a
// sparse MemoryImage plus a structured Listing -- the two artefacts
// the EILID build pipeline shuttles between iterations.
//
// Directives:
//   .org ADDR           set location counter (literal)
//   .word e1, e2, ...   emit words (expressions allowed)
//   .byte e1, e2, ...   emit bytes
//   .ascii "s" / .asciz "s"
//   .space N            emit N zero bytes
//   .align N            pad with zeros to an N-byte boundary
//   .equ NAME, value    define constant (literal or known symbol)
//   .global NAME        export marker (metadata only)
//   .func NAME          declare NAME a function entry point (used by
//                       the EILID instrumenter's P3 table)
//   .vector N, NAME     install NAME into interrupt vector slot N
//   .end                stop assembling
#ifndef EILID_MASM_ASSEMBLER_H
#define EILID_MASM_ASSEMBLER_H

#include <map>
#include <string>
#include <vector>

#include "masm/image.h"
#include "masm/listing.h"
#include "masm/statement.h"

namespace eilid::masm {

struct AssembledUnit {
  std::string name;
  MemoryImage image;
  Listing listing;
  std::map<std::string, uint16_t> symbols;
  std::vector<std::string> globals;
  std::vector<std::string> func_symbols;  // .func declarations
  std::map<int, std::string> vectors;     // vector slot -> handler symbol
};

// Assemble a unit. `lines` is the raw source, one string per line.
// Throws eilid::AsmError / eilid::LinkError on any problem.
AssembledUnit assemble(const std::vector<std::string>& lines,
                       const std::string& unit_name);

// Convenience: split a blob on '\n' and assemble.
AssembledUnit assemble_text(const std::string& text, const std::string& unit_name);

// Split helper shared with the instrumenter.
std::vector<std::string> split_lines(const std::string& text);

}  // namespace eilid::masm

#endif  // EILID_MASM_ASSEMBLER_H
