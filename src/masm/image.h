// Sparse memory image produced by the assembler and consumed by the
// loader. Also acts as the "linker": images from several units are
// merged with overlap checking.
#ifndef EILID_MASM_IMAGE_H
#define EILID_MASM_IMAGE_H

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace eilid::masm {

class MemoryImage {
 public:
  // Throws eilid::LinkError if the byte was already emitted.
  void emit_byte(uint16_t addr, uint8_t value);
  void emit_word(uint16_t addr, uint16_t value);

  bool contains(uint16_t addr) const { return bytes_.count(addr) != 0; }
  uint8_t byte_at(uint16_t addr) const;
  uint16_t word_at(uint16_t addr) const;

  // Total emitted bytes -- the paper's "binary size" metric.
  size_t size_bytes() const { return bytes_.size(); }

  // Merge another image into this one (the link step).
  void merge(const MemoryImage& other);

  // Contiguous runs for efficient loading.
  struct Chunk {
    uint16_t base;
    std::vector<uint8_t> data;
  };
  std::vector<Chunk> chunks() const;

  const std::map<uint16_t, uint8_t>& bytes() const { return bytes_; }

 private:
  std::map<uint16_t, uint8_t> bytes_;
};

}  // namespace eilid::masm

#endif  // EILID_MASM_IMAGE_H
