#include "attacks/gadgets.h"

#include "isa/decoder.h"
#include "isa/disasm.h"
#include "isa/registers.h"

namespace eilid::attacks {
namespace {

// RET is MOV @SP+, PC.
bool is_ret(const isa::Instruction& insn) {
  return insn.op == isa::Opcode::kMov &&
         insn.src.mode == isa::AddrMode::kIndirectInc &&
         insn.src.reg == isa::kSP &&
         insn.dst.mode == isa::AddrMode::kRegister && insn.dst.reg == isa::kPC;
}

bool is_indirect_transfer(const isa::Instruction& insn) {
  if (insn.op == isa::Opcode::kCall &&
      insn.src.mode == isa::AddrMode::kRegister) {
    return true;
  }
  // BR Rn == MOV Rn, PC.
  return insn.op == isa::Opcode::kMov &&
         insn.src.mode == isa::AddrMode::kRegister &&
         insn.dst.mode == isa::AddrMode::kRegister && insn.dst.reg == isa::kPC;
}

}  // namespace

std::vector<Gadget> find_gadgets(const masm::MemoryImage& image, uint16_t start,
                                 uint16_t end, int max_len) {
  std::vector<Gadget> out;
  for (uint32_t addr = start & 0xFFFE; addr <= end; addr += 2) {
    // Try to read a gadget of up to max_len instructions starting here.
    Gadget g;
    g.addr = static_cast<uint16_t>(addr);
    uint32_t pc = addr;
    bool terminated = false;
    for (int n = 0; n < max_len && pc <= end; ++n) {
      std::array<uint16_t, 3> words = {
          image.word_at(static_cast<uint16_t>(pc)),
          image.word_at(static_cast<uint16_t>(pc + 2)),
          image.word_at(static_cast<uint16_t>(pc + 4))};
      auto decoded = isa::decode(words, static_cast<uint16_t>(pc));
      if (!decoded) break;
      if (!g.text.empty()) g.text += " ; ";
      g.text += isa::disassemble(decoded->insn);
      ++g.length;
      if (is_ret(decoded->insn) || is_indirect_transfer(decoded->insn)) {
        g.ends_in_ret = is_ret(decoded->insn);
        terminated = true;
        break;
      }
      // Plain jumps/branches end the straight-line gadget unusably.
      if (isa::opcode_info(decoded->insn.op).format == isa::Format::kJump) break;
      pc += 2u * decoded->size_words;
    }
    if (terminated) out.push_back(std::move(g));
  }
  return out;
}

}  // namespace eilid::attacks
