// Fleet time + self-healing: the deterministic FleetClock, heartbeat
// cadence/jitter scheduling, freshness bookkeeping, the pure
// quarantine decision, automated remediation (reflash -> re-update ->
// re-attest), and the CampaignScheduler's soak windows and automatic
// rollback on halt. Every time-driven behavior here runs on simulated
// ticks -- a frozen clock quarantines nothing, and pooled runs are
// bit-identical to serial ones.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "apps/apps.h"
#include "attacks/attack.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "eilid/fleet.h"
#include "eilid/health.h"
#include "eilid/rollout.h"

namespace eilid {
namespace {

// Firmware generations with genuinely different layouts (the
// emit-call count shifts every later address).
std::string firmware(int generation) {
  std::string s = R"(.equ UART_TX, 0x0130
.org 0xE000
main:
    mov #0x1000, r1
)";
  for (int i = 0; i < generation + 1; ++i) s += "    call #emit\n";
  s += R"(halt:
    jmp halt
emit:
    mov.b #')";
  s += static_cast<char>('0' + generation);
  s += R"(', &UART_TX
    ret
.vector 15, main
.end
)";
  return s;
}

std::string device_id(size_t i) {
  std::string n = std::to_string(i);
  return "dev-" + std::string(n.size() < 2 ? 2 - n.size() : 0, '0') + n;
}

// N CFA-baseline devices on firmware(0), each run to halt so the first
// sweep has evidence to judge.
void provision_fleet(Fleet& fleet, size_t devices) {
  for (size_t i = 0; i < devices; ++i) {
    DeviceSession& dev =
        fleet.provision(device_id(i), firmware(0), "fw",
                        EnforcementPolicy::kCfaBaseline,
                        {.cfa = {.log_capacity = 65536}});
    dev.run_to_symbol("halt", 100000);
  }
}

// Rogue-but-validly-MAC'd out-of-band patch: the device applies it (the
// MAC verifies), logs an epoch marker no campaign sanctioned, and the
// next sweep convicts the unexplained code change (path_ok = false).
void diverge_out_of_band(Fleet& fleet, const std::string& id) {
  DeviceSession& dev = fleet.at(id);
  const crypto::Digest key = fleet.update_key(id);
  casu::UpdateAuthority authority(
      std::span<const uint8_t>(key.data(), key.size()));
  ASSERT_EQ(dev.apply_update(authority.make_package(
                0xE800, dev.firmware_version() + 1, {0x03, 0x43})),
            casu::UpdateStatus::kApplied);
}

// ------------------------------------------------------------ FleetClock

TEST(FleetClockTest, StartsAtZeroAndAdvancesMonotonically) {
  FleetClock clock;
  EXPECT_EQ(clock.now(), 0u);
  EXPECT_EQ(clock.advance(10), 10u);
  EXPECT_EQ(clock.now(), 10u);
  EXPECT_EQ(clock.advance_to(25), 25u);
  // advance_to never moves time backwards: a stale deadline is a no-op.
  EXPECT_EQ(clock.advance_to(5), 25u);
  EXPECT_EQ(clock.now(), 25u);
}

TEST(FleetClockTest, FleetOwnsOneClockAndStampsVerdicts) {
  Fleet fleet;
  provision_fleet(fleet, 2);
  fleet.clock().advance(42);
  for (const auto& verdict : fleet.verifier().verify_all()) {
    EXPECT_TRUE(verdict.ok()) << verdict.device_id;
    EXPECT_EQ(verdict.tick, 42u) << verdict.device_id;
  }
  // The verifier's freshness mirrors the stamped ticks.
  const VerifierService::Freshness fresh =
      fleet.verifier().freshness(device_id(0));
  EXPECT_TRUE(fresh.ever_ok);
  EXPECT_EQ(fresh.last_ok_tick, 42u);
  EXPECT_EQ(fresh.reports, 1u);
  // A device never swept reads value-initialized.
  EXPECT_EQ(fleet.verifier().freshness("ghost"),
            VerifierService::Freshness{});
}

// ------------------------------------------------------------- SeededRng

TEST(SeededRngTest, KeyedStreamsAreStableAndPerKey) {
  // The keyed stream is a pure function of (seed, key) -- FNV-1a, not
  // std::hash -- so heartbeat jitter phases are identical on every
  // platform and every run.
  auto a1 = common::SeededRng::keyed(7, "dev-00");
  auto a2 = common::SeededRng::keyed(7, "dev-00");
  EXPECT_EQ(a1.next(), a2.next());
  auto b = common::SeededRng::keyed(7, "dev-01");
  auto a3 = common::SeededRng::keyed(7, "dev-00");
  EXPECT_NE(a3.next(), b.next());
  // A different seed re-phases every key.
  auto c = common::SeededRng::keyed(8, "dev-00");
  auto a4 = common::SeededRng::keyed(7, "dev-00");
  EXPECT_NE(a4.next(), c.next());
}

// ------------------------------------------------------------ heartbeats

TEST(HeartbeatTest, CadenceFiresEveryPeriodAndRecordsFreshness) {
  Fleet fleet;
  provision_fleet(fleet, 3);
  HeartbeatScheduler scheduler(fleet, {.period = 100});
  const HeartbeatReport report = scheduler.run_until(1000);

  EXPECT_EQ(report.from, 0u);
  EXPECT_EQ(report.until, 1000u);
  EXPECT_EQ(fleet.clock().now(), 1000u);
  // No jitter: all devices beat together at 100, 200, ..., 1000.
  ASSERT_EQ(report.beats.size(), 10u);
  for (size_t b = 0; b < report.beats.size(); ++b) {
    const HeartbeatBeat& beat = report.beats[b];
    EXPECT_EQ(beat.tick, (b + 1) * 100);
    EXPECT_TRUE(beat.missed.empty());
    ASSERT_EQ(beat.verdicts.size(), 3u);
    for (const auto& verdict : beat.verdicts) {
      EXPECT_TRUE(verdict.ok()) << verdict.device_id;
      EXPECT_EQ(verdict.tick, beat.tick);
    }
  }
  for (const FreshnessRecord& record : scheduler.records()) {
    EXPECT_EQ(record.heartbeats, 10u) << record.device_id;
    EXPECT_EQ(record.misses, 0u);
    EXPECT_EQ(record.last_ok_tick, 1000u);
    EXPECT_EQ(record.next_due, 1100u);
    EXPECT_TRUE(record.ever_ok);
    EXPECT_FALSE(record.convicted);
    // The scheduler's record agrees with the verifier's own books.
    const auto fresh = fleet.verifier().freshness(record.device_id);
    EXPECT_EQ(fresh.last_ok_tick, record.last_ok_tick);
    EXPECT_EQ(fresh.last_attested_tick, record.last_attested_tick);
  }
}

TEST(HeartbeatTest, JitterSpreadsPhasesDeterministically) {
  Fleet fleet;
  provision_fleet(fleet, 4);
  const HeartbeatOptions options{.period = 100, .jitter = 7,
                                 .jitter_seed = 1234};
  HeartbeatScheduler scheduler(fleet, options);
  scheduler.run_until(300);

  std::set<Tick> first_beats;
  for (const FreshnessRecord& record : scheduler.records()) {
    // Phase is exactly the keyed-stream draw for this device.
    const Tick phase = common::SeededRng::keyed(options.jitter_seed,
                                                record.device_id)
                           .below(options.jitter + 1);
    EXPECT_LE(phase, options.jitter);
    // Enrolled at 0: beats at 100+phase, 200+phase; next due 300+phase
    // (or 400+phase when the phase fit a third beat under 300).
    EXPECT_EQ(record.next_due % 100, phase % 100) << record.device_id;
    EXPECT_GE(record.heartbeats, 2u);
    first_beats.insert(100 + phase);
  }
  // Seed 1234 spreads these four ids across more than one tick.
  EXPECT_GT(first_beats.size(), 1u);
}

TEST(HeartbeatTest, OfflineDevicesRecordMissesNotVerdicts) {
  Fleet fleet;
  provision_fleet(fleet, 3);
  fleet.at(device_id(1)).set_online(false);
  HeartbeatScheduler scheduler(fleet, {.period = 50});
  const HeartbeatReport report = scheduler.run_until(200);

  ASSERT_EQ(report.beats.size(), 4u);
  for (const HeartbeatBeat& beat : report.beats) {
    EXPECT_EQ(beat.verdicts.size(), 2u);
    EXPECT_EQ(beat.missed, std::vector<std::string>{device_id(1)});
  }
  const FreshnessRecord down = scheduler.record(device_id(1));
  EXPECT_EQ(down.misses, 4u);
  EXPECT_EQ(down.heartbeats, 0u);
  EXPECT_FALSE(down.ever_attested);
  // Misses keep the schedule moving: the device is due again at 250.
  EXPECT_EQ(down.next_due, 250u);
}

TEST(HeartbeatTest, PooledRunBitIdenticalToSerial) {
  auto run = [](bool pooled) {
    auto fleet = std::make_unique<Fleet>();
    provision_fleet(*fleet, 6);
    fleet->at(device_id(4)).set_online(false);
    HeartbeatScheduler scheduler(*fleet,
                                 {.period = 60, .jitter = 9,
                                  .jitter_seed = 99});
    HeartbeatReport report;
    if (pooled) {
      common::ThreadPool pool(4);
      report = scheduler.run_until(700, pool);
    } else {
      report = scheduler.run_until(700);
    }
    return std::make_pair(std::move(report), scheduler.records());
  };
  const auto serial = run(false);
  const auto pooled = run(true);
  EXPECT_TRUE(serial.first == pooled.first);
  EXPECT_TRUE(serial.second == pooled.second);
}

// --------------------------------------------------- quarantine decision

TEST(QuarantineTest, FrozenClockQuarantinesNothing) {
  Fleet fleet;
  provision_fleet(fleet, 3);
  HealthMonitor health(fleet, {.heartbeat = {.period = 100},
                               .policy = {.staleness_threshold = 150}});
  // Time never moves: no beats fire, nothing ages, nothing quarantines
  // -- run after run.
  for (int pass = 0; pass < 3; ++pass) {
    const HealthReport report = health.run_until(fleet.clock().now());
    EXPECT_TRUE(report.heartbeats.beats.empty());
    EXPECT_TRUE(report.newly_quarantined.empty());
    EXPECT_EQ(report.quarantined_after, 0u);
  }
  EXPECT_EQ(fleet.clock().now(), 0u);
  EXPECT_TRUE(health.quarantined().empty());
}

TEST(QuarantineTest, AssessIsAPureFunctionOfTheRecord) {
  // Mirrors the rollout property suite: seeded random records, the
  // decision recomputed from the documented rules alone, and purity
  // (copies, repeats, monotonicity in now) checked on every case.
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    common::SeededRng rng(seed * 977);
    FreshnessRecord record;
    record.device_id = device_id(seed % 30);
    record.enrolled_tick = rng.below(1000);
    record.ever_ok = rng.chance(1, 2);
    record.ever_attested = record.ever_ok || rng.chance(1, 2);
    record.last_ok_tick =
        record.ever_ok ? record.enrolled_tick + rng.below(1000) : 0;
    record.last_attested_tick =
        record.ever_attested ? record.last_ok_tick + rng.below(200) : 0;
    record.convicted = record.ever_attested && rng.chance(1, 3);
    record.heartbeats = static_cast<uint32_t>(rng.below(50));
    record.misses = static_cast<uint32_t>(rng.below(10));

    HealthPolicy policy;
    policy.staleness_threshold = rng.below(600) + 1;
    policy.quarantine_convicted = rng.chance(3, 4);
    const Tick now = record.enrolled_tick + rng.below(2000);

    const QuarantineReason verdict = assess(record, now, policy);

    // Oracle, straight from the contract: conviction (when policed)
    // outranks staleness; staleness ages from the last clean verdict,
    // or enrollment if there never was one.
    QuarantineReason expected = QuarantineReason::kNone;
    const Tick anchor =
        record.ever_ok ? record.last_ok_tick : record.enrolled_tick;
    const Tick age = now >= anchor ? now - anchor : 0;
    if (policy.quarantine_convicted && record.convicted) {
      expected = QuarantineReason::kConvicted;
    } else if (age > policy.staleness_threshold) {
      expected = QuarantineReason::kStale;
    }
    EXPECT_EQ(verdict, expected) << "seed " << seed;

    // Purity: a field-identical copy and a repeat call agree.
    const FreshnessRecord copy = record;
    EXPECT_EQ(assess(copy, now, policy), verdict) << "seed " << seed;
    EXPECT_EQ(assess(record, now, policy), verdict) << "seed " << seed;
    // Monotone in now: time passing never releases a quarantine.
    if (verdict != QuarantineReason::kNone) {
      EXPECT_NE(assess(record, now + rng.below(5000), policy),
                QuarantineReason::kNone)
          << "seed " << seed;
    }
  }
}

// ---------------------------------------------------------- self-healing

TEST(SelfHealingTest, StaleDeviceQuarantinedThenRemediatedRoundTrip) {
  Fleet fleet;
  provision_fleet(fleet, 3);
  HealthMonitor health(fleet, {.heartbeat = {.period = 100},
                               .policy = {.staleness_threshold = 150}});
  health.stage_remediation(
      fleet.stage_update(fleet.at(device_id(0)).shared_build()));

  // Everyone beats clean at 100.
  HealthReport report = health.run_until(100);
  EXPECT_TRUE(report.newly_quarantined.empty());

  // dev-01 drops off the network; by 300 its last clean verdict (100)
  // is 200 ticks old > 150: quarantined as stale. Offline means the
  // remediation attempt cannot reach it -- it stays quarantined.
  fleet.at(device_id(1)).set_online(false);
  report = health.run_until(300);
  ASSERT_EQ(report.newly_quarantined.size(), 1u);
  EXPECT_EQ(report.newly_quarantined[0].device_id, device_id(1));
  EXPECT_EQ(report.newly_quarantined[0].reason, QuarantineReason::kStale);
  EXPECT_EQ(report.newly_quarantined[0].since, 300u);
  ASSERT_EQ(report.remediations.size(), 1u);
  EXPECT_FALSE(report.remediations[0].reachable);
  EXPECT_FALSE(report.remediations[0].healed);
  EXPECT_EQ(report.quarantined_after, 1u);
  ASSERT_EQ(health.quarantined().size(), 1u);
  EXPECT_EQ(health.quarantined()[0].remediation_attempts, 1u);

  // The device comes back: the next pass remediates it -- reflash,
  // re-update (already current is a success), a clean re-attestation --
  // and releases it. No operator in the loop anywhere.
  fleet.at(device_id(1)).set_online(true);
  report = health.run_until(400);
  ASSERT_EQ(report.remediations.size(), 1u);
  const RemediationOutcome& heal = report.remediations[0];
  EXPECT_EQ(heal.device_id, device_id(1));
  EXPECT_TRUE(heal.reachable);
  EXPECT_EQ(heal.update.result, UpdateResult::kAlreadyCurrent);
  EXPECT_TRUE(heal.verdict.ok());
  EXPECT_TRUE(heal.healed);
  EXPECT_EQ(report.quarantined_after, 0u);
  EXPECT_TRUE(health.quarantined().empty());
  // Freshness restarted: the healed device is not re-quarantined by
  // the very next pass.
  report = health.run_until(500);
  EXPECT_TRUE(report.newly_quarantined.empty());
  EXPECT_EQ(report.quarantined_after, 0u);
}

TEST(SelfHealingTest, ConvictedDeviceIsReflashedReupdatedAndHeals) {
  Fleet fleet;
  provision_fleet(fleet, 3);
  HealthMonitor health(fleet, {.heartbeat = {.period = 100},
                               .policy = {.staleness_threshold = 500}});
  // Remediation re-updates onto a *new* golden build: the rogue-patched
  // device's diverged PMEM would refuse a diff-based update
  // (kImageMismatch) -- reflash first makes the transition applicable.
  auto golden = fleet.build(firmware(1), "fw", {.eilid = false});
  health.stage_remediation(fleet.stage_update(golden));

  // dev-02 takes a validly-MAC'd but unsanctioned patch. The beat at
  // 100 convicts the unexplained epoch marker; the same pass
  // quarantines and remediates it.
  diverge_out_of_band(fleet, device_id(2));
  const HealthReport report = health.run_until(100);

  ASSERT_EQ(report.heartbeats.beats.size(), 1u);
  bool convicted_seen = false;
  for (const auto& verdict : report.heartbeats.beats[0].verdicts) {
    if (verdict.device_id == device_id(2)) {
      convicted_seen = true;
      EXPECT_TRUE(verdict.attested);
      EXPECT_TRUE(verdict.mac_ok);
      EXPECT_FALSE(verdict.path_ok);
    } else {
      EXPECT_TRUE(verdict.ok()) << verdict.device_id;
    }
  }
  EXPECT_TRUE(convicted_seen);

  ASSERT_EQ(report.newly_quarantined.size(), 1u);
  EXPECT_EQ(report.newly_quarantined[0].device_id, device_id(2));
  EXPECT_EQ(report.newly_quarantined[0].reason,
            QuarantineReason::kConvicted);
  ASSERT_EQ(report.remediations.size(), 1u);
  const RemediationOutcome& heal = report.remediations[0];
  EXPECT_TRUE(heal.reachable);
  EXPECT_EQ(heal.update.result, UpdateResult::kApplied);
  EXPECT_TRUE(heal.update.build_swapped);
  EXPECT_TRUE(heal.verdict.ok());
  EXPECT_TRUE(heal.healed);
  EXPECT_EQ(report.quarantined_after, 0u);

  // The healed device genuinely runs the golden build now and keeps
  // attesting clean on the next beats.
  EXPECT_EQ(fleet.at(device_id(2)).shared_build().get(), golden.get());
  const HealthReport after = health.run_until(300);
  EXPECT_TRUE(after.newly_quarantined.empty());
  for (const auto& beat : after.heartbeats.beats) {
    for (const auto& verdict : beat.verdicts) {
      EXPECT_TRUE(verdict.ok()) << verdict.device_id;
    }
  }
}

TEST(SelfHealingTest, PooledHealthRunBitIdenticalToSerial) {
  auto run = [](bool pooled) {
    auto fleet = std::make_unique<Fleet>();
    provision_fleet(*fleet, 6);
    fleet->at(device_id(3)).set_online(false);  // goes stale
    diverge_out_of_band(*fleet, device_id(5));  // convicts at beat 1
    HealthMonitor health(*fleet, {.heartbeat = {.period = 100, .jitter = 5,
                                                .jitter_seed = 7},
                                  .policy = {.staleness_threshold = 150}});
    health.stage_remediation(
        fleet->stage_update(fleet->at(device_id(0)).shared_build()));
    HealthReport report;
    if (pooled) {
      common::ThreadPool pool(4);
      report = health.run_until(400, pool);
    } else {
      report = health.run_until(400);
    }
    return std::make_pair(std::move(report), health.quarantined());
  };
  const auto serial = run(false);
  const auto pooled = run(true);
  EXPECT_TRUE(serial.first == pooled.first);
  EXPECT_TRUE(serial.second == pooled.second);
}

// ----------------------------------------------------------- escalation

TEST(EscalationTest, UnreachableDeviceEscalatesAfterMaxAttempts) {
  Fleet fleet;
  provision_fleet(fleet, 2);
  HealthMonitor health(
      fleet, {.heartbeat = {.period = 100},
              .policy = {.staleness_threshold = 150, .max_heal_attempts = 2}});
  health.stage_remediation(
      fleet.stage_update(fleet.at(device_id(0)).shared_build()));

  // dev-01 drops off after a clean first beat; by 300 it is stale and
  // the remediation attempt cannot reach it (failed attempt #1).
  health.run_until(100);
  fleet.at(device_id(1)).set_online(false);
  HealthReport report = health.run_until(300);
  ASSERT_EQ(report.remediations.size(), 1u);
  EXPECT_FALSE(report.remediations[0].healed);
  EXPECT_TRUE(report.escalated.empty());
  ASSERT_EQ(health.quarantined().size(), 1u);
  EXPECT_EQ(health.quarantined()[0].remediation_attempts, 1u);

  // Failed attempt #2 exhausts the budget: the same pass escalates.
  report = health.run_until(400);
  ASSERT_EQ(report.remediations.size(), 1u);
  EXPECT_FALSE(report.remediations[0].healed);
  ASSERT_EQ(report.escalated.size(), 1u);
  EXPECT_EQ(report.escalated[0].device_id, device_id(1));
  EXPECT_EQ(report.escalated[0].reason, QuarantineReason::kEscalated);
  EXPECT_EQ(report.escalated[0].remediation_attempts, 2u);

  // Terminal: no further remediation passes are spent on it -- even
  // after the device comes back online -- and it stays quarantined
  // until an operator acts.
  fleet.at(device_id(1)).set_online(true);
  report = health.run_until(600);
  EXPECT_TRUE(report.remediations.empty());
  EXPECT_TRUE(report.escalated.empty());  // transition reported once
  EXPECT_EQ(report.quarantined_after, 1u);
  ASSERT_EQ(health.quarantined().size(), 1u);
  EXPECT_EQ(health.quarantined()[0].reason, QuarantineReason::kEscalated);
}

TEST(EscalationTest, HealCountSurvivesReleaseAndReconviction) {
  Fleet fleet;
  provision_fleet(fleet, 2);
  HealthMonitor health(
      fleet, {.heartbeat = {.period = 100},
              .policy = {.staleness_threshold = 150, .max_heal_attempts = 2}});
  health.stage_remediation(
      fleet.stage_update(fleet.at(device_id(0)).shared_build()));

  // Incarnation 1: offline -> stale -> one failed attempt, then the
  // device comes back and the next pass heals and releases it.
  health.run_until(100);
  fleet.at(device_id(1)).set_online(false);
  HealthReport report = health.run_until(300);
  ASSERT_EQ(report.remediations.size(), 1u);
  EXPECT_FALSE(report.remediations[0].healed);
  fleet.at(device_id(1)).set_online(true);
  report = health.run_until(400);
  ASSERT_EQ(report.remediations.size(), 1u);
  EXPECT_TRUE(report.remediations[0].healed);
  EXPECT_TRUE(health.quarantined().empty());

  // Incarnation 2: the same device goes bad again. Its new quarantine
  // entry carries the *lifetime* attempt count (the release did not
  // reset it), so the very next failed attempt -- #2 overall --
  // escalates instead of looping heal -> re-quarantine forever.
  fleet.at(device_id(1)).set_online(false);
  report = health.run_until(700);
  ASSERT_EQ(report.newly_quarantined.size(), 1u);
  EXPECT_EQ(report.newly_quarantined[0].remediation_attempts, 1u);
  ASSERT_EQ(report.escalated.size(), 1u);
  EXPECT_EQ(report.escalated[0].device_id, device_id(1));
  EXPECT_EQ(report.escalated[0].remediation_attempts, 2u);
  ASSERT_EQ(health.quarantined().size(), 1u);
  EXPECT_EQ(health.quarantined()[0].reason, QuarantineReason::kEscalated);
}

TEST(EscalationTest, ZeroMaxHealAttemptsMeansUnbounded) {
  Fleet fleet;
  provision_fleet(fleet, 2);
  HealthMonitor health(fleet, {.heartbeat = {.period = 100},
                               .policy = {.staleness_threshold = 150}});
  health.stage_remediation(
      fleet.stage_update(fleet.at(device_id(0)).shared_build()));
  health.run_until(100);
  fleet.at(device_id(1)).set_online(false);
  // Five straight failed passes under the default (0 = unbounded)
  // budget: the device keeps getting attempts and never escalates.
  for (Tick deadline = 300; deadline <= 700; deadline += 100) {
    HealthReport report = health.run_until(deadline);
    ASSERT_EQ(report.remediations.size(), 1u) << deadline;
    EXPECT_FALSE(report.remediations[0].healed);
    EXPECT_TRUE(report.escalated.empty());
  }
  ASSERT_EQ(health.quarantined().size(), 1u);
  EXPECT_EQ(health.quarantined()[0].reason, QuarantineReason::kStale);
  EXPECT_EQ(health.quarantined()[0].remediation_attempts, 5u);
}

// --------------------------------------------------------- soak windows

TEST(SoakTest, SoakResweepCatchesCompromiseTheFirstSweepMissed) {
  const apps::AppSpec& app = apps::vuln_gateway();
  Fleet fleet;
  for (int i = 0; i < 4; ++i) {
    DeviceSession& dev = fleet.provision(
        "unit-" + std::to_string(i), app.source, app.name,
        EnforcementPolicy::kCfaBaseline, {.cfa = {.log_capacity = 65536}});
    dev.machine().uart().feed(attacks::benign_payload());
    dev.run_to_symbol("halt", app.cycle_budget);
  }
  std::string v2 = app.source;
  v2.insert(v2.rfind(".vector"), "v2_tag:\n    ret\n");
  auto target = fleet.build(v2, "gateway-v2", {.eilid = false});

  RolloutPlan plan;
  plan.waves = {{.name = "canary", .device_ids = {"unit-0", "unit-1"}},
                {.name = "rest", .fraction = 1.0}};
  plan.soak_ticks = 50;
  // The compromise only manifests while the new firmware *runs*: the
  // probe (inside the soak window, after the immediate sweep) feeds
  // unit-0 the stack-smash exploit.
  plan.probe = [&app](const std::vector<DeviceSession*>& wave,
                      common::ThreadPool*) {
    for (DeviceSession* dev : wave) {
      std::lock_guard<std::mutex> lock(dev->mutex());
      dev->machine().run(64);
      if (dev->id() == "unit-0") {
        dev->machine().uart().feed(
            attacks::overflow_ret_payload(dev->symbol("unlock")));
        dev->run_to_symbol("halt", 8 * app.cycle_budget);
      } else {
        apps::run_workload(*dev, app);
      }
    }
  };

  const RolloutReport report = fleet.plan_rollout(target, plan).run();
  EXPECT_TRUE(report.halted);
  ASSERT_EQ(report.waves.size(), 2u);
  const WaveOutcome& canary = report.waves[0];

  // The immediate post-apply sweep saw a perfectly healthy update...
  ASSERT_EQ(canary.soak_gate.size(), 2u);
  for (const auto& verdict : canary.soak_gate) {
    EXPECT_TRUE(verdict.ok()) << verdict.device_id;
  }
  // ...and only the soak re-sweep convicts the hijack.
  ASSERT_EQ(canary.gate.size(), 2u);
  EXPECT_EQ(canary.gate[0].device_id, "unit-0");
  EXPECT_FALSE(canary.gate[0].path_ok);
  EXPECT_TRUE(canary.gate[1].ok());
  EXPECT_EQ(canary.failures, 1u);

  // The soak window is fleet time: gate tick = apply tick + soak.
  EXPECT_EQ(canary.applied_tick, 0u);
  EXPECT_EQ(canary.soaked_until, 50u);
  EXPECT_EQ(canary.gated_tick, 50u);
  EXPECT_FALSE(report.waves[1].applied);
}

// ---------------------------------------------------- rollback on halt

TEST(RollbackTest, HaltRollsTheTouchedFleetBackToPriorBuilds) {
  Fleet fleet;
  provision_fleet(fleet, 6);
  // Mixed-version fleet: dev-04/dev-05 already run generation 1.
  auto gen1 = fleet.build(firmware(1), "fw", {.eilid = false});
  UpdateCampaign to_gen1 = fleet.stage_update(gen1);
  for (size_t i = 4; i < 6; ++i) {
    ASSERT_TRUE(to_gen1.apply_to(fleet.at(device_id(i))).ok());
  }
  auto gen0 = fleet.at(device_id(0)).shared_build();
  auto gen2 = fleet.build(firmware(2), "fw", {.eilid = false});

  // Forge dev-00's transport; zero budget; one wave over everything.
  CampaignOptions campaign_options;
  campaign_options.tamper = [](const DeviceSession& dev,
                               casu::UpdatePackage& package) {
    if (dev.id() == device_id(0)) package.mac[0] ^= 0xFF;
  };
  RolloutPlan plan;
  plan.waves = {{.name = "all", .fraction = 1.0}};
  plan.rollback_on_halt = true;
  const RolloutReport report =
      fleet.plan_rollout(gen2, plan, campaign_options).run();

  EXPECT_TRUE(report.halted);
  EXPECT_TRUE(report.rolled_back);
  ASSERT_EQ(report.waves.size(), 1u);
  const WaveOutcome& wave = report.waves[0];
  ASSERT_EQ(wave.rollbacks.size(), 6u);
  ASSERT_EQ(wave.rolled_back.size(), 6u);

  // dev-00 never swapped (bad MAC): the reverse campaign finds it
  // already on its prior build. Everyone else is driven back.
  EXPECT_EQ(wave.updates[0].result, UpdateResult::kBadMac);
  EXPECT_EQ(wave.rollbacks[0].result, UpdateResult::kAlreadyCurrent);
  EXPECT_FALSE(wave.rolled_back[0]);
  for (size_t i = 1; i < 6; ++i) {
    EXPECT_EQ(wave.updates[i].result, UpdateResult::kApplied) << i;
    EXPECT_EQ(wave.rollbacks[i].result, UpdateResult::kApplied) << i;
    EXPECT_TRUE(wave.rolled_back[i]) << i;
  }

  // Each device is back on the exact build it ran before the wave --
  // including the generation-1 pair -- and the rollback was a genuine
  // anti-rollback-monotonic update (versions went up, not back).
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(fleet.at(device_id(i)).shared_build().get(), gen0.get()) << i;
  }
  for (size_t i = 4; i < 6; ++i) {
    EXPECT_EQ(fleet.at(device_id(i)).shared_build().get(), gen1.get()) << i;
  }
  EXPECT_EQ(fleet.at(device_id(0)).firmware_version(), 0u);
  EXPECT_EQ(fleet.at(device_id(1)).firmware_version(), 2u);  // fwd + back
  EXPECT_EQ(fleet.at(device_id(4)).firmware_version(), 3u);  // gen1 + fwd + back

  // Rolled-back devices keep attesting clean: the reverse campaign
  // staged real epoch markers and CFG swaps back.
  for (const auto& verdict : fleet.verifier().verify_all()) {
    EXPECT_TRUE(verdict.ok()) << verdict.device_id;
  }
}

TEST(RollbackTest, SuccessfulPlansNeverRollBack) {
  Fleet fleet;
  provision_fleet(fleet, 4);
  auto gen1 = fleet.build(firmware(1), "fw", {.eilid = false});
  RolloutPlan plan;
  plan.waves = {{.name = "all", .fraction = 1.0}};
  plan.rollback_on_halt = true;
  const RolloutReport report = fleet.plan_rollout(gen1, plan).run();
  EXPECT_FALSE(report.halted);
  EXPECT_FALSE(report.rolled_back);
  EXPECT_TRUE(report.waves[0].rollbacks.empty());
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(fleet.at(device_id(i)).shared_build().get(), gen1.get()) << i;
  }
}

TEST(RollbackTest, PooledRollbackReportBitIdenticalToSerial) {
  auto run = [](bool pooled) {
    auto fleet = std::make_unique<Fleet>();
    provision_fleet(*fleet, 8);
    auto gen1 = fleet->build(firmware(1), "fw", {.eilid = false});
    UpdateCampaign to_gen1 = fleet->stage_update(gen1);
    for (size_t i = 5; i < 8; ++i) {
      EXPECT_TRUE(to_gen1.apply_to(fleet->at(device_id(i))).ok());
    }
    CampaignOptions campaign_options;
    campaign_options.tamper = [](const DeviceSession& dev,
                                 casu::UpdatePackage& package) {
      if (dev.id() == device_id(2)) package.mac[0] ^= 0xFF;
    };
    RolloutPlan plan;
    plan.waves = {{.name = "canary", .fraction = 0.5},
                  {.name = "rest", .fraction = 1.0}};
    plan.max_in_flight = 3;
    plan.soak_ticks = 25;
    plan.rollback_on_halt = true;
    auto gen2 = fleet->build(firmware(2), "fw", {.eilid = false});
    CampaignScheduler scheduler =
        fleet->plan_rollout(gen2, plan, campaign_options);
    if (pooled) {
      common::ThreadPool pool(4);
      return scheduler.run(pool);
    }
    return scheduler.run();
  };
  const RolloutReport serial = run(false);
  const RolloutReport pooled = run(true);
  EXPECT_TRUE(serial.halted);
  EXPECT_TRUE(serial.rolled_back);
  EXPECT_TRUE(serial == pooled);
}

}  // namespace
}  // namespace eilid
