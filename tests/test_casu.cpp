// CASU substrate tests: the immutability/W^X/ROM-gate invariants and
// the authenticated update protocol.
#include <gtest/gtest.h>

#include <memory>

#include "casu/monitor.h"
#include "casu/update.h"
#include "eilid/device.h"
#include "eilid/pipeline.h"
#include "masm/assembler.h"

namespace eilid::casu {
namespace {

using sim::ResetReason;

struct DeviceUnderTest {
  std::unique_ptr<sim::Machine> machine;
  std::unique_ptr<CasuMonitor> monitor;
};

DeviceUnderTest make_device(const std::string& body, CasuConfig cfg = {}) {
  std::string src =
      ".org 0xe000\nstart:\n    mov #0x1000, r1\n" + body +
      "halt:\n    jmp halt\n.vector 15, start\n";
  auto unit = masm::assemble_text(src, "casu");
  DeviceUnderTest d;
  d.machine = std::make_unique<sim::Machine>();
  cfg.rom_present = false;  // bare CASU device unless a test injects ROM
  d.monitor = std::make_unique<CasuMonitor>(cfg);
  d.machine->add_monitor(d.monitor.get());
  for (const auto& chunk : unit.image.chunks()) {
    d.machine->load(chunk.base, chunk.data);
  }
  d.machine->power_on();
  d.machine->set_halt_on_reset(true);
  return d;
}

TEST(Casu, PmemWriteFromAppResets) {
  auto d = make_device("    mov #0xdead, &0xe100\n");
  auto r = d.machine->run(1000);
  EXPECT_EQ(r.cause, sim::StopCause::kDeviceReset);
  EXPECT_EQ(d.machine->resets().back().reason, ResetReason::kPmemWriteViolation);
  // The store must not have landed (immutability, not just detection).
  EXPECT_NE(d.machine->bus().raw_word(0xE100), 0xDEAD);
}

TEST(Casu, RamWriteIsFine) {
  auto d = make_device("    mov #0xdead, &0x0300\n");
  auto r = d.machine->run(1000);
  EXPECT_EQ(r.cause, sim::StopCause::kCycleBudget);
  EXPECT_EQ(d.machine->violation_count(), 0u);
  EXPECT_EQ(d.machine->bus().raw_word(0x0300), 0xDEAD);
}

TEST(Casu, ExecFromRamResets) {
  auto d = make_device(R"(    mov #0x4303, &0x0300
    br #0x0300
)");
  auto r = d.machine->run(1000);
  EXPECT_EQ(r.cause, sim::StopCause::kDeviceReset);
  EXPECT_EQ(d.machine->resets().back().reason, ResetReason::kDmemExecViolation);
}

TEST(Casu, RomWriteResets) {
  auto d = make_device("    mov #1, &0xa100\n");
  d.machine->run(1000);
  EXPECT_EQ(d.machine->resets().back().reason, ResetReason::kRomWriteViolation);
}

TEST(Casu, ViolationRegFromAppIsPrivileged) {
  auto d = make_device("    mov #1, &0x0190\n");
  d.machine->run(1000);
  EXPECT_EQ(d.machine->resets().back().reason,
            ResetReason::kPrivilegedMmioViolation);
}

TEST(Casu, KeyRegionUnreadableFromApp) {
  auto d = make_device("    mov &0xafe0, r10\n");
  d.machine->run(1000);
  EXPECT_EQ(d.machine->resets().back().reason,
            ResetReason::kSecureRamAccessViolation);
}

TEST(Casu, RomEntryGateEnforced) {
  // A device WITH trusted ROM: jumping into the middle of the ROM body
  // (past the entry section) must reset.
  core::BuildResult build = core::build_app(
      ".org 0xe000\nmain:\n    mov #0x1000, r1\nhalt:\n    jmp halt\n"
      ".vector 15, main\n.end\n",
      "gate");
  uint16_t body_addr = build.rom.unit.symbols.at("S_EILID_store_ra");
  std::string attack_src =
      ".org 0xe000\nmain:\n    mov #0x1000, r1\n    br #" +
      std::to_string(body_addr) + "\nhalt:\n    jmp halt\n.vector 15, main\n";
  core::BuildResult attack = core::build_app(attack_src, "gate2",
                                             {.eilid = false});
  attack.rom = build.rom;  // same trusted ROM
  core::Device device(attack, {.halt_on_reset = true});
  auto r = device.machine().run(1000);
  EXPECT_EQ(r.cause, sim::StopCause::kDeviceReset);
  EXPECT_EQ(device.machine().resets().back().reason,
            ResetReason::kRomEntryViolation);
}

TEST(Casu, RomEntryThroughStubIsLegal) {
  core::BuildResult build = core::build_app(
      ".org 0xe000\nmain:\n    mov #0x1000, r1\n    call #foo\nhalt:\n"
      "    jmp halt\nfoo:\n    ret\n.vector 15, main\n.end\n",
      "legal");
  core::Device device(build, {.halt_on_reset = true});
  auto r = device.run_to_symbol("halt", 5000);
  EXPECT_EQ(r.cause, sim::StopCause::kBreakpoint);
  EXPECT_EQ(device.machine().violation_count(), 0u);
}

class UpdateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    build_ = core::build_app(
        ".org 0xe000\nmain:\n    mov #0x1000, r1\nhalt:\n    jmp halt\n"
        ".vector 15, main\n.end\n",
        "app");
    device_ = std::make_unique<core::Device>(build_);
    engine_ = std::make_unique<UpdateEngine>(
        std::span<const uint8_t>(key_.data(), key_.size()), device_->monitor());
  }

  std::vector<uint8_t> key_ = std::vector<uint8_t>(32, 0x77);
  core::BuildResult build_;
  std::unique_ptr<core::Device> device_;
  std::unique_ptr<UpdateEngine> engine_;
};

TEST_F(UpdateTest, ValidUpdateApplies) {
  auto pkg = engine_->make_package(0xE800, 1, {0x11, 0x22, 0x33});
  EXPECT_EQ(engine_->apply(device_->machine(), pkg), UpdateStatus::kApplied);
  EXPECT_EQ(device_->machine().bus().raw_byte(0xE800), 0x11);
  EXPECT_EQ(engine_->current_version(), 1u);
}

TEST_F(UpdateTest, TamperedPayloadRejectedAndDeviceHeals) {
  auto pkg = engine_->make_package(0xE800, 1, {0x11, 0x22, 0x33});
  pkg.payload[0] = 0x99;  // tampered in transit
  EXPECT_EQ(engine_->apply(device_->machine(), pkg), UpdateStatus::kBadMac);
  EXPECT_NE(device_->machine().bus().raw_byte(0xE800), 0x99);
  device_->machine().run(100);
  EXPECT_EQ(device_->machine().resets().back().reason,
            ResetReason::kUpdateAuthFailure);
}

TEST_F(UpdateTest, RollbackRejected) {
  auto v2 = engine_->make_package(0xE800, 2, {0xAA});
  EXPECT_EQ(engine_->apply(device_->machine(), v2), UpdateStatus::kApplied);
  auto v1 = engine_->make_package(0xE802, 1, {0xBB});
  EXPECT_EQ(engine_->apply(device_->machine(), v1), UpdateStatus::kRollback);
  auto v2b = engine_->make_package(0xE802, 2, {0xBB});
  EXPECT_EQ(engine_->apply(device_->machine(), v2b), UpdateStatus::kRollback);
}

TEST_F(UpdateTest, NonPmemTargetRejected) {
  auto pkg = engine_->make_package(0x0300, 1, {0x11});
  EXPECT_EQ(engine_->apply(device_->machine(), pkg), UpdateStatus::kBadRegion);
}

TEST_F(UpdateTest, WrongKeyRejected) {
  std::vector<uint8_t> other_key(32, 0x78);
  UpdateEngine rogue(std::span<const uint8_t>(other_key.data(), other_key.size()),
                     device_->monitor());
  auto pkg = rogue.make_package(0xE800, 1, {0x11});
  EXPECT_EQ(engine_->apply(device_->machine(), pkg), UpdateStatus::kBadMac);
}

}  // namespace
}  // namespace eilid::casu
