// Staged-rollout throughput: a mixed-version fleet (half on firmware
// v1, half on v2) rolled onto v3 through Fleet::plan_rollout() with a
// 4-wave canary plan -- an explicit 4-device canary, then 25% / 50% /
// the rest -- an 8-device A/B hold, a rate limit, and an attestation
// gate after every wave. Each thread count in {1, 2, 4, 8} runs the
// full plan (1 = the serial scheduler); a second, adversarial pass per
// thread count forges one canary's transport under a zero failure
// budget, so the timed path includes a halting run.
//
// Correctness gates (the bench FAILS on any violation):
//   - clean plan: no halt, all 4 waves applied, every non-held device
//     lands on v3 and its wave gate came back ok(),
//   - held cohort devices never move, in both passes,
//   - halting plan: exactly wave 1 applied, the forged canary is
//     kBadMac, later waves' devices still run their old build,
//   - each thread count's reports (clean and halting) are bit-identical
//     to the serial reports (rollout determinism).
// Devices/sec are reported but not gated (host-dependent).
//
// Usage: bench_rollout [--smoke]   (--smoke: CI-sized fleet)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/eilid/fleet.h"
#include "src/eilid/rollout.h"

using namespace eilid;

namespace {

using clock_type = std::chrono::steady_clock;

double ms_since(clock_type::time_point start) {
  return std::chrono::duration<double, std::milli>(clock_type::now() - start)
      .count();
}

std::string firmware(int generation) {
  std::string s = R"(.equ UART_TX, 0x0130
.org 0xE000
main:
    mov #0x1000, r1
)";
  for (int i = 0; i < generation + 1; ++i) s += "    call #emit\n";
  s += R"(halt:
    jmp halt
emit:
    mov.b #')";
  s += static_cast<char>('0' + generation);
  s += R"(', &UART_TX
    ret
.vector 15, main
.end
)";
  return s;
}

std::string device_id(size_t i) {
  char buf[32];  // worst-case %zu needs more than 16 (-Wformat-truncation)
  std::snprintf(buf, sizeof(buf), "dev-%03zu", i);
  return buf;
}

constexpr size_t kHeld = 8;       // trailing devices pinned in the A/B hold
constexpr size_t kCanaries = 4;   // explicit first wave

struct RowResult {
  size_t threads = 0;
  size_t devices = 0;
  double clean_ms = 0;
  double halting_ms = 0;
  bool gates_ok = true;
  RolloutReport clean;    // compared field-wise across rows
  RolloutReport halting;  // ditto
};

RolloutPlan make_plan(size_t devices) {
  RolloutPlan plan;
  HoldSpec hold{"ab-cohort", {}};
  for (size_t i = devices - kHeld; i < devices; ++i) {
    hold.device_ids.push_back(device_id(i));
  }
  plan.holds.push_back(std::move(hold));
  WaveSpec canary{"canary", {}, 0.0};
  for (size_t i = 0; i < kCanaries; ++i) {
    canary.device_ids.push_back(device_id(i));
  }
  plan.waves = {canary,
                {"quarter", {}, 0.25},
                {"half", {}, 0.5},
                {"rest", {}, 1.0}};
  plan.max_in_flight = 32;
  return plan;
}

RowResult run_row(size_t threads, size_t devices) {
  RowResult row;
  row.threads = threads;
  row.devices = devices;
  const bool serial = threads == 1;
  common::ThreadPool pool(threads);

  auto build_fleet = [&](Fleet& fleet) {
    for (size_t i = 0; i < devices; ++i) {
      DeviceSession& dev = fleet.provision(
          device_id(i), firmware(i % 2 == 0 ? 1 : 2), "fw",
          EnforcementPolicy::kCfaBaseline);
      dev.run_to_symbol("halt", 100000);
    }
  };

  // --- clean pass: the plan completes, every wave gated. ---
  {
    Fleet fleet;
    build_fleet(fleet);
    auto target = fleet.build(firmware(3), "fw", {.eilid = false});
    CampaignScheduler scheduler =
        fleet.plan_rollout(target, make_plan(devices));
    auto t0 = clock_type::now();
    row.clean = serial ? scheduler.run() : scheduler.run(pool);
    row.clean_ms = ms_since(t0);

    if (row.clean.halted || row.clean.waves_applied != 4) row.gates_ok = false;
    size_t gated_ok = 0;
    for (const WaveOutcome& wave : row.clean.waves) {
      for (const auto& verdict : wave.gate) {
        if (verdict.ok()) ++gated_ok;
      }
      for (const auto& update : wave.updates) {
        if (update.result != UpdateResult::kApplied) row.gates_ok = false;
      }
    }
    if (gated_ok != devices - kHeld) row.gates_ok = false;
    for (size_t i = 0; i < devices; ++i) {
      DeviceSession& dev = fleet.at(device_id(i));
      const bool held = i >= devices - kHeld;
      const bool on_target = dev.shared_build().get() == target.get();
      if (held == on_target) row.gates_ok = false;
    }
  }

  // --- halting pass: forged canary, zero budget. ---
  {
    Fleet fleet;
    build_fleet(fleet);
    auto target = fleet.build(firmware(3), "fw", {.eilid = false});
    CampaignOptions options;
    options.tamper = [](const DeviceSession& dev,
                        casu::UpdatePackage& package) {
      if (dev.id() == device_id(0)) package.mac[0] ^= 0xFF;
    };
    CampaignScheduler scheduler =
        fleet.plan_rollout(target, make_plan(devices), options);
    auto t0 = clock_type::now();
    row.halting = serial ? scheduler.run() : scheduler.run(pool);
    row.halting_ms = ms_since(t0);

    if (!row.halting.halted || row.halting.waves_applied != 1) {
      row.gates_ok = false;
    }
    if (row.halting.waves.empty() ||
        row.halting.waves[0].updates.empty() ||
        row.halting.waves[0].updates[0].result != UpdateResult::kBadMac) {
      row.gates_ok = false;
    }
    // Later waves stayed on their old builds; the hold never moved.
    for (size_t i = kCanaries; i < devices; ++i) {
      if (fleet.at(device_id(i)).shared_build().get() == target.get()) {
        row.gates_ok = false;
      }
    }
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const size_t devices = smoke ? 64 : 256;
  const size_t kThreadCounts[] = {1, 2, 4, 8};

  std::vector<RowResult> rows;
  for (size_t threads : kThreadCounts) {
    rows.push_back(run_row(threads, devices));
  }
  const RowResult& base = rows[0];

  std::printf("Staged rollout (%s): %zu devices, 4-wave canary plan, "
              "%zu-device A/B hold, attestation gate per wave\n",
              smoke ? "smoke" : "full", devices, kHeld);
  std::printf("%7s | %12s | %14s | %11s | %8s\n", "threads", "clean ms",
              "halting ms", "devices/sec", "speedup");
  bool ok = true;
  for (const RowResult& row : rows) {
    std::printf("%7zu | %12.2f | %14.2f | %11.0f | %7.2fx\n", row.threads,
                row.clean_ms, row.halting_ms,
                row.clean_ms > 0 ? 1000.0 * static_cast<double>(
                                       row.devices - kHeld) / row.clean_ms
                                 : 0.0,
                row.clean_ms > 0 ? base.clean_ms / row.clean_ms : 0.0);
    if (!row.gates_ok) {
      std::printf("  !! threads=%zu: correctness gate failed\n", row.threads);
      ok = false;
    }
    if (!(row.clean == base.clean) || !(row.halting == base.halting)) {
      std::printf("  !! threads=%zu: reports diverge from the serial row\n",
                  row.threads);
      ok = false;
    }
  }
  std::printf("reports: %zu waves per plan, bit-identical across all "
              "thread counts\n", base.clean.waves.size());
  std::printf("%s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
