// MSP430 CPU core: 16 registers, fetch/decode/execute, status flags,
// interrupt entry. Timing follows src/isa/cycles.h.
//
// The CPU is deliberately unaware of CASU/EILID: all enforcement
// happens in bus watchers, exactly as the paper's hardware monitors
// snoop CPU signals without modifying the core.
#ifndef EILID_SIM_CPU_H
#define EILID_SIM_CPU_H

#include <array>
#include <cstdint>
#include <memory>
#include <optional>

#include "isa/decoded_image.h"
#include "isa/decoder.h"
#include "isa/registers.h"
#include "sim/bus.h"

namespace eilid::sim {

enum class StepStatus : uint8_t {
  kOk,
  kIllegal,  // undecodable instruction word
  kDenied,   // a bus watcher denied an access mid-instruction
};

struct StepOutcome {
  StepStatus status = StepStatus::kOk;
  unsigned cycles = 0;
  uint16_t pc = 0;  // address of the instruction that executed (or faulted)
  // Fall-through address of the decoded instruction (pc when nothing
  // decoded). Monitors compare this against the PC after the step to
  // spot control transfers without re-decoding.
  uint16_t next_pc = 0;
};

class Cpu {
 public:
  explicit Cpu(Bus& bus) : bus_(bus) {}

  // Load PC from the reset vector and clear registers.
  void power_on_reset();

  // Execute a single instruction.
  StepOutcome step();

  // Attach a predecoded image built from the bytes currently flashed.
  // The CPU consults it for PCs inside its ranges and falls back to
  // interpretive decode elsewhere. The attachment is valid only while
  // no store lands in the code range: the bus's code-generation
  // counter is snapshotted here and checked every step, so a device
  // that scribbles on its own code (possible under kNone) re-decodes
  // from memory and stays architecturally correct.
  void set_decoded_image(std::shared_ptr<const isa::DecodedImage> image) {
    image_ = std::move(image);
    image_generation_ = bus_.code_generation();
  }
  const isa::DecodedImage* decoded_image() const { return image_.get(); }
  bool decode_cache_valid() const {
    return image_ != nullptr && bus_.code_generation() == image_generation_;
  }
  uint64_t decode_cache_hits() const { return decode_cache_hits_; }
  uint64_t decode_cache_misses() const { return decode_cache_misses_; }

  // Hardware interrupt entry: push PC and SR, clear SR (except SCG0),
  // load the handler address from the vector table. Returns cycles.
  unsigned service_interrupt(int vector_index);

  uint16_t reg(int i) const { return regs_[static_cast<size_t>(i)]; }
  void set_reg(int i, uint16_t v);
  uint16_t pc() const { return regs_[isa::kPC]; }
  uint16_t sp() const { return regs_[isa::kSP]; }
  uint16_t sr() const { return regs_[isa::kSR]; }

  bool gie() const { return (sr() & isa::sr::kGIE) != 0; }
  bool cpu_off() const { return (sr() & isa::sr::kCpuOff) != 0; }

  uint64_t instructions_retired() const { return instructions_retired_; }

 private:
  struct DstRef {
    bool is_reg = true;
    uint8_t reg = 0;
    uint16_t ea = 0;
  };

  // Interpretive decode of the instruction at `pc` from backing memory.
  std::optional<isa::Decoded> interpret_decode(uint16_t pc) const;

  uint16_t read_src(const isa::Operand& op, bool byte);
  DstRef resolve_dst(const isa::Operand& op);
  uint16_t read_at(const DstRef& ref, bool byte);
  void write_at(const DstRef& ref, bool byte, uint16_t value);
  void push_word(uint16_t value);
  uint16_t pop_word();

  void exec_double(const isa::Instruction& insn);
  void exec_single(const isa::Instruction& insn, uint16_t insn_pc);
  void exec_jump(const isa::Decoded& decoded);

  void set_flag(uint16_t bit, bool on);
  bool flag(uint16_t bit) const { return (sr() & bit) != 0; }
  // Flag helper for add-with-carry style ops (sub is add of ~src).
  uint16_t add_and_flags(uint16_t a, uint16_t b, unsigned carry_in, bool byte);

  Bus& bus_;
  std::array<uint16_t, isa::kNumRegs> regs_{};
  uint16_t cur_pc_ = 0;  // pc of the executing instruction (bus attribution)
  uint64_t instructions_retired_ = 0;
  std::shared_ptr<const isa::DecodedImage> image_;
  uint64_t image_generation_ = 0;
  uint64_t decode_cache_hits_ = 0;
  uint64_t decode_cache_misses_ = 0;
};

}  // namespace eilid::sim

#endif  // EILID_SIM_CPU_H
