// End-to-end security tests for P1/P2/P3: every control-flow attack
// hijacks the unprotected device and is stopped in real time on the
// EILID device -- the paper's central claim.
#include <gtest/gtest.h>

#include "apps/apps.h"
#include "common/error.h"
#include "attacks/attack.h"
#include "attacks/gadgets.h"
#include "eilid/device.h"
#include "eilid/pipeline.h"

namespace eilid {
namespace {

using sim::ResetReason;

TEST(AttackP1, ExploitHijacksPlainDevice) {
  const auto& app = apps::vuln_gateway();
  core::BuildResult build = core::build_app(app.source, app.name,
                                            {.eilid = false});
  core::Device device(build, {.halt_on_reset = true});
  device.machine().uart().feed(
      attacks::overflow_ret_payload(device.symbol("unlock")));
  device.run_to_symbol("halt", 200000);
  EXPECT_NE(device.machine().uart().tx_text().find('U'), std::string::npos)
      << "unlock() must have executed on the unprotected device";
}

TEST(AttackP1, ExploitStoppedOnEilidDevice) {
  const auto& app = apps::vuln_gateway();
  core::BuildResult build = core::build_app(app.source, app.name);
  core::Device device(build, {.halt_on_reset = true});
  device.machine().uart().feed(
      attacks::overflow_ret_payload(device.symbol("unlock")));
  auto r = device.run_to_symbol("halt", 200000);
  EXPECT_EQ(r.cause, sim::StopCause::kDeviceReset);
  EXPECT_EQ(device.machine().resets().back().reason,
            ResetReason::kCfiReturnMismatch);
  EXPECT_EQ(device.machine().uart().tx_text().find('U'), std::string::npos)
      << "prevention: the hijacked code must never run";
}

TEST(AttackP1, BenignTrafficUnaffected) {
  const auto& app = apps::vuln_gateway();
  core::BuildResult build = core::build_app(app.source, app.name);
  core::Device device(build, {.halt_on_reset = true});
  device.machine().uart().feed(attacks::benign_payload());
  auto r = device.run_to_symbol("halt", 200000);
  EXPECT_EQ(r.cause, sim::StopCause::kBreakpoint);
  EXPECT_EQ(device.machine().violation_count(), 0u);
}

TEST(AttackP2, IsrContextTamperCaughtByEilid) {
  const auto& app = apps::app_by_name("light_sensor");
  core::BuildResult build = core::build_app(app.source, app.name);
  core::Device device(build, {.halt_on_reset = true});
  app.setup(device.machine());

  attacks::AttackEngine engine(device.machine());
  attacks::Attack attack;
  attack.trigger = {attacks::Trigger::Kind::kAtPc,
                    build.rom.unit.symbols.at("S_EILID_store_rfi"), 1};
  attacks::MemWrite w;
  w.sp_relative = true;
  w.addr = 8;  // saved interrupt PC (below veneer RA + saved r6/r7 + SR)
  w.value = device.symbol("halt");
  attack.writes = {w};
  engine.schedule(attack);

  auto r = device.run_to_symbol("halt", 8 * app.cycle_budget);
  EXPECT_EQ(r.cause, sim::StopCause::kDeviceReset);
  EXPECT_EQ(engine.fired_count(), 1u);
  EXPECT_EQ(device.machine().resets().back().reason,
            ResetReason::kCfiRfiMismatch);
}

TEST(AttackP3, UnregisteredTargetCaught) {
  const auto& app = apps::vuln_gateway();
  core::BuildResult build = core::build_app(app.source, app.name);
  core::Device device(build, {.halt_on_reset = true});
  device.machine().uart().feed(attacks::benign_payload());

  attacks::AttackEngine engine(device.machine());
  attacks::Attack attack;
  attack.trigger = {attacks::Trigger::Kind::kAtPc, device.symbol("act"), 1};
  attack.writes = {{0x0202, device.symbol("unlock"), false, false}};
  engine.schedule(attack);

  auto r = device.run_to_symbol("halt", 200000);
  EXPECT_EQ(r.cause, sim::StopCause::kDeviceReset);
  EXPECT_EQ(device.machine().resets().back().reason,
            ResetReason::kCfiIndirectCallViolation);
}

TEST(AttackP3, RegisteredTargetAllowedFunctionLevelGranularity) {
  // The paper's acknowledged limitation: redirecting to another entry
  // *in the table* is not detected.
  const auto& app = apps::vuln_gateway();
  core::BuildResult build = core::build_app(app.source, app.name);
  core::Device device(build, {.halt_on_reset = true});
  device.machine().uart().feed(attacks::benign_payload());

  attacks::AttackEngine engine(device.machine());
  attacks::Attack attack;
  attack.trigger = {attacks::Trigger::Kind::kAtPc, device.symbol("act"), 1};
  attack.writes = {{0x0202, device.symbol("blink"), false, false}};
  engine.schedule(attack);

  auto r = device.run_to_symbol("halt", 200000);
  EXPECT_EQ(r.cause, sim::StopCause::kBreakpoint);
  EXPECT_EQ(device.machine().violation_count(), 0u);
}

TEST(AttackEngine, RefusesNonRamTargets) {
  const auto& app = apps::vuln_gateway();
  core::BuildResult build = core::build_app(app.source, app.name);
  core::Device device(build);
  attacks::AttackEngine engine(device.machine());
  attacks::Attack attack;
  attack.writes = {{0xE000, 0xDEAD, false, false}};  // PMEM
  EXPECT_THROW(engine.schedule(attack), ConfigError);
  attack.writes = {{0x2000, 0xDEAD, false, false}};  // secure DMEM
  EXPECT_THROW(engine.schedule(attack), ConfigError);
  attack.writes = {{0xA000, 0xDEAD, false, false}};  // ROM
  EXPECT_THROW(engine.schedule(attack), ConfigError);
}

TEST(Gadgets, FinderLocatesRetGadgets) {
  const auto& app = apps::vuln_gateway();
  core::BuildResult build = core::build_app(app.source, app.name,
                                            {.eilid = false});
  auto gadgets = attacks::find_gadgets(build.app.image, 0xE000, 0xF000);
  EXPECT_FALSE(gadgets.empty());
  bool any_ret = false;
  for (const auto& g : gadgets) {
    EXPECT_GE(g.length, 1);
    EXPECT_LE(g.length, 3);
    any_ret = any_ret || g.ends_in_ret;
  }
  EXPECT_TRUE(any_ret);
}

TEST(Attacks, DeviceRebootsCleanAfterEnforcement) {
  // After an enforcement reset the device must run normally again
  // (CASU heals by reset; state is wiped).
  const auto& app = apps::vuln_gateway();
  core::BuildResult build = core::build_app(app.source, app.name);
  core::Device device(build);  // halt_on_reset = false: let it reboot
  device.machine().uart().feed(
      attacks::overflow_ret_payload(device.symbol("unlock")));
  device.machine().uart().feed(attacks::benign_payload());
  auto r = device.run_to_symbol("halt", 400000);
  EXPECT_EQ(r.cause, sim::StopCause::kBreakpoint);
  EXPECT_GE(device.machine().violation_count(), 1u);
  EXPECT_EQ(device.machine().uart().tx_text().find('U'), std::string::npos);
}

}  // namespace
}  // namespace eilid
