// Incremental windowed attestation: drain and replay each device's CFA
// log in bounded slices on a rolling schedule, instead of one barrier
// verify_all() that stops the world and materializes every device's
// full log at once. This is what makes verification *scale*: at 10k
// devices the barrier sweep's cost (and peak memory) is proportional
// to the whole fleet's accumulated evidence, while the windowed
// verifier touches at most max_devices_per_tick devices per round and
// at most max_bytes_per_slice of evidence per device -- ACFA-style log
// slices, scheduled by fleet time.
//
// Verdict semantics are identical to the barrier sweep by
// construction, not by luck:
//
//   - A bounded CfaMonitor::take_report drains oldest-first and leaves
//     the remainder, so the slice sequence carries exactly the
//     evidence one unbounded report would, in order, each slice MAC'd
//     and sequence-numbered like any report.
//   - The verifier's replay state persists across reports (it always
//     has), so replaying N slices walks the same edge sequence as
//     replaying one big report: a hijack is convicted at exactly the
//     same edge, in whichever slice it falls. Update (epoch) markers
//     and reset markers are ordinary logged edges and are honored
//     mid-window exactly as mid-report.
//   - fold() collapses a device's slice verdicts into one
//     AttestSummary with sticky conviction; folding the barrier
//     sweep's single verdict through the same fold yields a
//     bit-identical summary (tests/test_fleet_scale.cpp and
//     bench_fleet_10k gate this, serial and pooled).
//
// Concurrency contract: run_until(pool) fans each round's slices out
// with the same per-device DeviceSession::mutex() locking as
// VerifierService::verify_all, so rounds interleave safely with
// heartbeat sweeps, rollouts and workload drivers; the pooled report
// is bit-identical to the serial one (slices are written by round
// index; each device's evidence and replay state are private to it).
// Like the other schedulers, the object itself is single-driver: one
// run_until at a time, though summaries()/summary() may be read
// concurrently.
#ifndef EILID_EILID_INCREMENTAL_H
#define EILID_EILID_INCREMENTAL_H

#include <cstddef>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "eilid/clock.h"
#include "eilid/fleet.h"

namespace eilid {

struct IncrementalOptions {
  // Ticks between verification rounds.
  Tick period = 10;
  // Devices sliced per round (0 = every watched device). The rotation
  // cursor walks the fleet in device-id order across rounds, so every
  // device is reached regardless of fleet size.
  size_t max_devices_per_tick = 64;
  // Evidence budget per slice, in wire bytes (LoggedEdge::kWireBytes
  // per edge; 0 = unbounded, degenerating to a full drain). This is
  // the verifier's peak per-device working set, the knob the paper's
  // "voluminous logs" pressure pushes on.
  size_t max_bytes_per_slice = 64 * cfa::LoggedEdge::kWireBytes;
};

// A device's attestation history folded to one verdict. Conviction is
// sticky: the first slice that fails the path check pins path_ok and
// first_bad forever (later slices keep draining -- evidence keeps
// flowing, matching the barrier sweep's freshness behavior -- but
// cannot un-convict). Meaningful after at least one fold; the ok
// fields start true so folding is pure accumulation.
struct AttestSummary {
  std::string device_id;
  bool attested = true;  // every fold carried evidence
  bool mac_ok = true;    // no report ever failed authentication
  bool seq_ok = true;    // no report ever arrived out of sequence
  bool path_ok = true;   // replay never left the CFG
  uint64_t edges = 0;    // total evidence replayed
  uint64_t dropped = 0;  // total evidence lost to on-device overflow
  std::optional<cfa::LoggedEdge> first_bad;  // first convicting edge

  bool convicted() const { return !(attested && mac_ok && seq_ok && path_ok); }

  bool operator==(const AttestSummary&) const = default;
};

// Fold one verdict (a bounded slice or a barrier sweep's full drain)
// into a summary. The single definition both sides of the
// barrier==windowed identity gate share.
void fold(AttestSummary& summary, const VerifierService::AttestResult& result);

class IncrementalVerifier {
 public:
  // One round: the slices collected at one due tick, in rotation
  // order (the cyclic device-id walk, offline devices skipped).
  struct Round {
    Tick tick = 0;
    std::vector<VerifierService::AttestResult> slices;

    bool operator==(const Round&) const = default;
  };

  struct WindowReport {
    Tick from = 0;   // clock at run_until entry
    Tick until = 0;  // clock at return (== the requested deadline)
    std::vector<Round> rounds;  // in tick order

    bool operator==(const WindowReport&) const = default;
  };

  // Watches every CFA-capable session in the fleet's registry, like
  // HeartbeatScheduler: devices deployed later join on the next round,
  // decommissioned devices drop out (decommission must not race a run,
  // per the fleet contract). Throws eilid::FleetError on period == 0.
  explicit IncrementalVerifier(Fleet& fleet, IncrementalOptions options = {});

  // Advance fleet time to `deadline`, firing a round every `period`
  // ticks on the way: rotate to the next max_devices_per_tick online
  // devices, drain at most max_bytes_per_slice from each
  // (VerifierService::attest_slice -- per-device locks, freshness
  // bookkeeping, replay state all shared with the barrier sweeps), and
  // fold every verdict into the per-device summaries. The pooled
  // overload returns a bit-identical report. If another scheduler
  // advanced the clock past the pending round between calls, the
  // cadence re-anchors at the current tick (no backlog of degenerate
  // rounds is replayed).
  WindowReport run_until(Tick deadline);
  WindowReport run_until(Tick deadline, common::ThreadPool& pool);

  // Folded summaries, sorted by device id / for one device
  // (value-initialized when the rotation never reached it).
  std::vector<AttestSummary> summaries() const;
  AttestSummary summary(const std::string& device_id) const;

  // The per-slice edge budget max_bytes_per_slice implies (0 when
  // unbounded).
  size_t max_edges_per_slice() const;

  const IncrementalOptions& options() const { return options_; }

 private:
  WindowReport run(Tick deadline, common::ThreadPool* pool);

  Fleet* fleet_;
  IncrementalOptions options_;
  mutable std::mutex mu_;  // guards summaries_ against concurrent readers
  std::map<std::string, AttestSummary> summaries_;
  // Rotation state: the id the last round stopped at (next round
  // resumes strictly after it, wrapping), and the next due tick.
  std::string cursor_;
  Tick next_round_ = 0;
  bool scheduled_ = false;
};

}  // namespace eilid

#endif  // EILID_EILID_INCREMENTAL_H
