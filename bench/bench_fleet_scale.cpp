// Fleet-scale smoke baseline: provision 64 CFA-attested devices from 4
// cached builds (16 devices per Table IV app), drive every device to
// its halt label in attestation windows, and batch-verify the whole
// fleet after each window. Reports wall-clock for provisioning,
// simulation and verification so later scaling PRs (sharding, async
// verification) have a number to beat.
#include <chrono>
#include <cstdio>
#include <vector>

#include "src/apps/apps.h"
#include "src/eilid/fleet.h"

using namespace eilid;

namespace {

using clock_type = std::chrono::steady_clock;

double ms_since(clock_type::time_point start) {
  return std::chrono::duration<double, std::milli>(clock_type::now() - start)
      .count();
}

constexpr int kDevicesPerApp = 16;
constexpr uint64_t kWindowCycles = 25000;

}  // namespace

int main() {
  const char* kAppNames[4] = {"light_sensor", "temp_sensor", "charlieplexing",
                              "lcd_sensor"};
  Fleet fleet;

  // --- provision: 64 sessions, 4 pipeline runs --------------------
  auto t0 = clock_type::now();
  std::vector<DeviceSession*> devices;
  std::vector<const apps::AppSpec*> specs;
  for (const char* name : kAppNames) {
    const auto& app = apps::app_by_name(name);
    for (int i = 0; i < kDevicesPerApp; ++i) {
      DeviceSession& dev = fleet.provision(
          app.name + "-" + std::to_string(i), app.source, app.name,
          EnforcementPolicy::kCfaBaseline, {.cfa = {.log_capacity = 16384}});
      app.setup(dev.machine());
      devices.push_back(&dev);
      specs.push_back(&app);
    }
  }
  double provision_ms = ms_since(t0);

  // --- run + attest in windows ------------------------------------
  double run_ms = 0, attest_ms = 0;
  uint64_t total_cycles = 0;
  size_t reports = 0, report_failures = 0, halted = 0;
  std::vector<bool> done(devices.size(), false);
  int windows = 0;
  while (halted < devices.size()) {
    ++windows;
    auto tr = clock_type::now();
    for (size_t i = 0; i < devices.size(); ++i) {
      if (done[i]) continue;
      auto run = devices[i]->run_to_symbol("halt", kWindowCycles);
      total_cycles += run.cycles;
      if (run.cause == sim::StopCause::kBreakpoint) {
        done[i] = true;
        ++halted;
      }
    }
    run_ms += ms_since(tr);

    auto ta = clock_type::now();
    for (const auto& verdict : fleet.verifier().verify_all()) {
      ++reports;
      if (!verdict.ok()) ++report_failures;
    }
    attest_ms += ms_since(ta);
    if (windows > 100) break;  // safety net; budgets make this unreachable
  }

  size_t check_failures = 0;
  for (size_t i = 0; i < devices.size(); ++i) {
    if (!specs[i]->check(devices[i]->machine()).empty()) ++check_failures;
  }

  std::printf("Fleet scale smoke: %zu devices, %zu pipeline runs "
              "(%zu cache hits)\n",
              fleet.size(), fleet.pipeline_runs(), fleet.build_cache_hits());
  std::printf("  provision:  %8.1f ms (build + flash + enroll)\n",
              provision_ms);
  std::printf("  simulate:   %8.1f ms for %llu cycles over %d windows\n",
              run_ms, static_cast<unsigned long long>(total_cycles), windows);
  std::printf("  attest:     %8.1f ms for %zu reports (%zu path/MAC/seq "
              "failures)\n",
              attest_ms, reports, report_failures);
  std::printf("  workloads:  %zu/%zu reached halt, %zu host-check failures\n",
              halted, devices.size(), check_failures);

  bool ok = halted == devices.size() && report_failures == 0 &&
            check_failures == 0;
  std::printf("%s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
