// Ablation (paper Fig. 2 / §VI compile-time): the paper's numeric
// three-iteration build vs a label-based single-pass instrumenter.
// The three-iteration flow is what a 200-line Python script over .lst
// files can do; a label-aware assembler collapses the pipeline to one
// build. Identical binaries must result (modulo nothing -- we check!).
#include <cstdio>

#include "bench/bench_util.h"

using namespace eilid;
using namespace eilid::bench;

int main() {
  std::printf("Ablation: numeric 3-iteration build vs label-based "
              "single-pass build\n\n");
  std::printf("%-18s | %-24s | %-24s | %-9s | %s\n", "Software",
              "numeric ms (3 builds)", "label ms (1 build)", "speedup",
              "same image");
  print_rule(100);

  static const core::RomInfo rom = core::build_rom();
  for (const auto& app : apps::table4_apps()) {
    core::BuildOptions numeric;
    numeric.prebuilt_rom = &rom;
    numeric.verify_convergence = false;

    core::BuildOptions label;
    label.prebuilt_rom = &rom;
    label.instrument.label_mode = true;

    double ms_numeric = 0, ms_label = 0;
    {
      auto t0 = std::chrono::steady_clock::now();
      for (int i = 0; i < 50; ++i) core::build_app(app.source, app.name, numeric);
      ms_numeric = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count() /
                   50;
      auto t1 = std::chrono::steady_clock::now();
      for (int i = 0; i < 50; ++i) core::build_app(app.source, app.name, label);
      ms_label = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - t1)
                     .count() /
                 50;
    }

    auto numeric_build = core::build_app(app.source, app.name, numeric);
    auto label_build = core::build_app(app.source, app.name, label);
    bool same = numeric_build.app.image.bytes() == label_build.app.image.bytes();

    std::printf("%-18s | %22.3f | %22.3f | %8.2fx | %s\n", app.name.c_str(),
                ms_numeric, ms_label, ms_numeric / ms_label,
                same ? "yes" : "NO");
  }
  std::printf(
      "\nBoth modes produce byte-identical images; the paper's numeric flow\n"
      "pays ~3x the build cost for toolchain simplicity (no assembler\n"
      "changes, only a 200-line script over .lst files).\n");
  return 0;
}
